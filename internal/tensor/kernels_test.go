package tensor_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pardon-feddg/pardon/internal/tensor"
)

// randMatrix fills an (r,c) tensor with normal samples, sprinkling exact
// zeros (and a negative zero) so the kernels' zero-skip paths and FP
// edge cases are exercised.
func randMatrix(r *rand.Rand, rows, cols int) *tensor.Tensor {
	t := tensor.Randn(r, 1, rows, cols)
	d := t.Data()
	for i := range d {
		switch r.Intn(8) {
		case 0:
			d[i] = 0
		case 1:
			d[i] = math.Copysign(0, -1)
		}
	}
	return t
}

func bitsEqual(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	if !tensor.SameShape(got, want) {
		t.Fatalf("%s: shape %v vs %v", name, got.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	for i := range gd {
		if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
			t.Fatalf("%s: element %d = %x, want %x (%g vs %g)",
				name, i, math.Float64bits(gd[i]), math.Float64bits(wd[i]), gd[i], wd[i])
		}
	}
}

// kernelShapes covers the degenerate and non-multiple-of-tile shapes the
// blocked kernels must handle: 1×N, N×1, tiny, odd, and larger than one
// tile on every axis.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{7, 1, 7},
	{1, 300, 1},
	{3, 5, 4},
	{31, 17, 29},
	{5, 129, 300}, // wide/odd k and n: panels narrower than their rows
	{130, 129, 257},
	{64, 64, 64},
	// Strip-edge shapes: one off either side of the 2-row × 4-column
	// register strips, plus large panels with ragged tails on both axes.
	{4, 4, 4},
	{8, 8, 8},
	{9, 8, 7},
	{7, 9, 8},
	{8, 7, 9},
	{12, 5, 12},
	{16, 3, 16},
	{15, 2, 17},
	{11, 513, 520}, // large panels with odd row count
	{24, 300, 875}, // large panels with n%4 ≠ 0 tails
}

// TestKernelsBitIdenticalToSerial is the core determinism property: the
// blocked (and, above the threshold, parallel) kernels must reproduce the
// naive serial reference bit for bit across odd shapes.
func TestKernelsBitIdenticalToSerial(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, s := range kernelShapes {
		a := randMatrix(r, s.m, s.k)
		b := randMatrix(r, s.k, s.n)

		want, err := tensor.MatMulSerial(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tensor.MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "matmul", got, want)

		at := randMatrix(r, s.k, s.m) // (k,m) for aᵀ@b
		wantATB, err := tensor.MatMulATBSerial(at, b)
		if err != nil {
			t.Fatal(err)
		}
		gotATB, err := tensor.MatMulATB(at, b)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "matmulATB", gotATB, wantATB)

		bt := randMatrix(r, s.n, s.k) // (n,k) for a@bᵀ
		wantABT, err := tensor.MatMulABTSerial(a, bt)
		if err != nil {
			t.Fatal(err)
		}
		gotABT, err := tensor.MatMulABT(a, bt)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "matmulABT", gotABT, wantABT)
	}
}

// TestKernelsSplitInvariant proves the result does not depend on how rows
// are partitioned across workers, including degenerate and uneven splits —
// the property that makes Parallelism a pure scheduling knob.
func TestKernelsSplitInvariant(t *testing.T) {
	for _, s := range []struct{ m, k, n int }{
		{37, 41, 23},   // 2×4 strips with ragged tails on both axes
		{37, 512, 520}, // large streamed b panel (k·n past L2)
	} {
		t.Run("", func(t *testing.T) { testSplitInvariant(t, s.m, s.k, s.n) })
	}
}

func testSplitInvariant(t *testing.T, m, k, n int) {
	r := rand.New(rand.NewSource(12))
	a := randMatrix(r, m, k)
	b := randMatrix(r, k, n)
	at := randMatrix(r, k, m)
	bt := randMatrix(r, n, k)

	splits := [][]int{
		{0, m},
		{0, 1, m},
		{0, m - 1, m},
		{0, 5, 11, 12, 30, m},
		func() []int { // one row per task
			s := make([]int, m+1)
			for i := range s {
				s[i] = i
			}
			return s
		}(),
	}

	wantMM, _ := tensor.MatMulSerial(a, b)
	wantATB, _ := tensor.MatMulATBSerial(at, b)
	wantABT, _ := tensor.MatMulABTSerial(a, bt)
	for _, bounds := range splits {
		got, err := tensor.MatMulWithSplits(a, b, bounds)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "matmul split", got, wantMM)
		got, err = tensor.MatMulATBWithSplits(at, b, bounds)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "matmulATB split", got, wantATB)
		got, err = tensor.MatMulABTWithSplits(a, bt, bounds)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "matmulABT split", got, wantABT)
	}
}

// TestMatMulIntoVariants checks the Into kernels against their allocating
// forms, including that a dirty reused output buffer is fully overwritten.
func TestMatMulIntoVariants(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	const m, k, n = 9, 33, 14
	a := randMatrix(r, m, k)
	b := randMatrix(r, k, n)
	at := randMatrix(r, k, m)
	bt := randMatrix(r, n, k)

	dirty := func() *tensor.Tensor { return tensor.Full(999, m, n) }

	out := dirty()
	if err := tensor.MatMulInto(out, a, b); err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.MatMul(a, b)
	bitsEqual(t, "matmulinto", out, want)

	out = dirty()
	if err := tensor.MatMulATBInto(out, at, b); err != nil {
		t.Fatal(err)
	}
	want, _ = tensor.MatMulATB(at, b)
	bitsEqual(t, "matmulATBinto", out, want)

	out = dirty()
	if err := tensor.MatMulABTInto(out, a, bt); err != nil {
		t.Fatal(err)
	}
	want, _ = tensor.MatMulABT(a, bt)
	bitsEqual(t, "matmulABTinto", out, want)

	// Wrong output shape must be rejected, not silently written.
	bad := tensor.New(m+1, n)
	if err := tensor.MatMulInto(bad, a, b); err == nil {
		t.Fatal("MatMulInto accepted wrong out shape")
	}
	if err := tensor.MatMulATBInto(bad, at, b); err == nil {
		t.Fatal("MatMulATBInto accepted wrong out shape")
	}
	if err := tensor.MatMulABTInto(bad, a, bt); err == nil {
		t.Fatal("MatMulABTInto accepted wrong out shape")
	}
}

func TestAddScaledInto(t *testing.T) {
	a := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := tensor.MustFromSlice([]float64{10, 20, 30, 40}, 2, 2)
	dst := tensor.New(2, 2)
	if err := tensor.AddScaledInto(dst, a, 0.5, b); err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 12, 18, 24}
	for i, v := range dst.Data() {
		if v != want[i] {
			t.Fatalf("dst[%d] = %g, want %g", i, v, want[i])
		}
	}
	// Aliasing dst==a is the in-place axpy.
	if err := tensor.AddScaledInto(a, a, 1, b); err != nil {
		t.Fatal(err)
	}
	if a.Data()[3] != 44 {
		t.Fatalf("aliased axpy = %v", a.Data())
	}
	if err := tensor.AddScaledInto(dst, a, 1, tensor.New(4)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestApplyInto(t *testing.T) {
	src := tensor.MustFromSlice([]float64{-1, 0, 2}, 3)
	dst := tensor.Full(7, 3)
	relu := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return x
	}
	if err := tensor.ApplyInto(dst, src, relu); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 2}
	for i, v := range dst.Data() {
		if v != want[i] {
			t.Fatalf("dst[%d] = %g, want %g", i, v, want[i])
		}
	}
	if src.Data()[0] != -1 {
		t.Fatal("ApplyInto mutated src")
	}
	if err := tensor.ApplyInto(dst, tensor.New(4), relu); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

// TestBinaryOpShapeChecks covers the Dot/SquaredDistance fix: equal
// element counts with different shapes must be rejected, consistently
// with the other binary ops.
func TestBinaryOpShapeChecks(t *testing.T) {
	a := tensor.New(2, 3)
	b := tensor.New(3, 2)
	if _, err := tensor.Dot(a, b); err == nil {
		t.Fatal("Dot accepted (2,3) vs (3,2)")
	}
	if _, err := tensor.SquaredDistance(a, b); err == nil {
		t.Fatal("SquaredDistance accepted (2,3) vs (3,2)")
	}
	if _, err := tensor.CosineSimilarity(a, b); err == nil {
		t.Fatal("CosineSimilarity accepted (2,3) vs (3,2)")
	}
	if _, err := tensor.Dot(tensor.New(2, 3), tensor.New(2, 3)); err != nil {
		t.Fatal(err)
	}
}
