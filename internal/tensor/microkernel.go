// Micro-kernel layer: register-blocked inner loops shared by the
// float64 tensor kernels (kernels.go) and the float32 slice kernels
// (f32.go). The panel entry points (mmPanel/atbPanel/abtPanel) compute
// a contiguous range of output rows — the unit the worker pool hands
// out — by walking the output in 2-row × 4-column register strips
// whose accumulators live in named locals, so each a/b element loaded
// from memory feeds up to 4 multiply-adds instead of one and each b
// element is reused across both rows.
//
// Why 2×4: the strip keeps 8 accumulators + 4 b values + 2 a values
// live, which fits amd64's 16 vector registers with room for the loop
// carried state. Wider and taller tiles were measured and rejected on
// this target (numbers in DESIGN.md §5): a 4×4 tile (16 accumulators)
// and 2×8/4×8/8×8 variants all spill accumulators to the stack every
// iteration, and benchmark at or below the plain scalar row kernel,
// while 2×4 beats the scalar kernel by 1.4–1.9× across 64³, 256³ and
// deep (32×1024×64) shapes for all three products.
//
// Two invariants carry over from the scalar kernels (DESIGN.md §5):
//
//   - Per-element accumulation order is ascending p, always. Strips
//     reorder the (i,j) walk, never the reduction, so the blocked
//     kernels are bit-identical to the serial references in float64
//     at any parallelism — including signed zeros: under
//     round-to-nearest a sum can only be −0 when both operands are
//     −0, and the gate discards ±0 a-elements, so a register
//     accumulator that starts at +0 is never −0 and assigning it
//     equals accumulating it into a zeroed element, bit for bit.
//     Assignment in turn lets every panel make one write-only pass
//     over its output rows — no zeroing pass, no read-modify-write.
//   - Zero skipping is per a-element, exactly like the references:
//     MatMul/MatMulATB gate each strip row on `a != 0` so a zero
//     contributes no term (which matters when b holds NaN/Inf), while
//     ABT is a dense dot product with no gate, also like its reference.
//
// The same generic bodies instantiate for float32; the f32 results are
// likewise bit-identical to a scalar float32 reference (same order,
// same rounding), and differ from float64 only by the documented
// rounding tolerance.
package tensor

// number is the dtype seam: every micro-kernel is written once against
// this constraint and stenciled for float32 and float64.
type number interface{ ~float32 | ~float64 }

// --- MatMul: out[i,j] = Σ_p a[i,p]·b[p,j], a is m×k, b is k×n ---

// mmPanel computes out rows [lo,hi) of a@b. Every element is assigned
// exactly once from a register accumulator, so out need not be zeroed
// and the kernel makes a single write-only pass over its panel.
// Assignment is bitwise identical to zero-then-accumulate: a gated
// ascending-p sum that starts at +0 can never round to −0, so
// out[j] = c equals out[j] = 0 + c in every bit.
func mmPanel[T number](a, b, out []T, k, n, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		o0 := out[(i+0)*n : (i+1)*n]
		o1 := out[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			mm2x4(a0, a1, b, o0, o1, n, j)
		}
		if j < n {
			mmRowTail(a0, b, o0, n, j)
			mmRowTail(a1, b, o1, n, j)
		}
	}
	if i < hi {
		mmRowTail(a[i*k:(i+1)*k], b, out[i*n:(i+1)*n], n, 0)
	}
}

// mm2x4 accumulates the 2×4 output strip at rows a0,a1, columns j..j+3.
func mm2x4[T number](a0, a1, b, o0, o1 []T, n, j int) {
	var c00, c01, c02, c03 T
	var c10, c11, c12, c13 T
	for p := 0; p < len(a0); p++ {
		bp := b[p*n+j : p*n+j+4]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		if v := a0[p]; v != 0 {
			c00 += v * b0
			c01 += v * b1
			c02 += v * b2
			c03 += v * b3
		}
		if v := a1[p]; v != 0 {
			c10 += v * b0
			c11 += v * b1
			c12 += v * b2
			c13 += v * b3
		}
	}
	o0[j+0] = c00
	o0[j+1] = c01
	o0[j+2] = c02
	o0[j+3] = c03
	o1[j+0] = c10
	o1[j+1] = c11
	o1[j+2] = c12
	o1[j+3] = c13
}

// mmRowTail computes output columns [jlo,n) of one row: 1×4 register
// strips while four columns remain, then one accumulator per trailing
// column. Every element still reduces in ascending-p order gated on
// the a element — the reference order — and is assigned once.
func mmRowTail[T number](ai, b, oi []T, n, jlo int) {
	j := jlo
	for ; j+4 <= n; j += 4 {
		var c0, c1, c2, c3 T
		for p := 0; p < len(ai); p++ {
			if v := ai[p]; v != 0 {
				bp := b[p*n+j : p*n+j+4]
				c0 += v * bp[0]
				c1 += v * bp[1]
				c2 += v * bp[2]
				c3 += v * bp[3]
			}
		}
		oi[j+0] = c0
		oi[j+1] = c1
		oi[j+2] = c2
		oi[j+3] = c3
	}
	for ; j < n; j++ {
		var c T
		for p := 0; p < len(ai); p++ {
			if av := ai[p]; av != 0 {
				c += av * b[p*n+j]
			}
		}
		oi[j] = c
	}
}

// --- MatMulATB: out[i,j] = Σ_p a[p,i]·b[p,j], a is k×m, b is k×n ---

// atbPanel computes out rows [lo,hi) of aᵀ@b. Like mmPanel it assigns
// every element exactly once from a register accumulator, so out need
// not be zeroed. Output row i reads column i of a; the 2-row strip
// loads the adjacent pair a[p,i], a[p,i+1] with one contiguous slice
// per p.
func atbPanel[T number](a, b, out []T, k, m, n, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		o0 := out[(i+0)*n : (i+1)*n]
		o1 := out[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			atb2x4(a, b, o0, o1, k, m, n, i, j)
		}
		if j < n {
			atbColTail(a, b, o0, o1, k, m, n, i, j)
		}
	}
	if i < hi {
		atbRowTail(a, b, out[i*n:(i+1)*n], k, m, n, i)
	}
}

// atbRowTail computes the full output row i: 1×4 register strips, then
// one accumulator per trailing column.
func atbRowTail[T number](a, b, oi []T, k, m, n, i int) {
	j := 0
	for ; j+4 <= n; j += 4 {
		var c0, c1, c2, c3 T
		for p := 0; p < k; p++ {
			if v := a[p*m+i]; v != 0 {
				bp := b[p*n+j : p*n+j+4]
				c0 += v * bp[0]
				c1 += v * bp[1]
				c2 += v * bp[2]
				c3 += v * bp[3]
			}
		}
		oi[j+0] = c0
		oi[j+1] = c1
		oi[j+2] = c2
		oi[j+3] = c3
	}
	for ; j < n; j++ {
		var c T
		for p := 0; p < k; p++ {
			if v := a[p*m+i]; v != 0 {
				c += v * b[p*n+j]
			}
		}
		oi[j] = c
	}
}

// atb2x4 accumulates the 2×4 output strip at rows i,i+1, columns j..j+3.
func atb2x4[T number](a, b, o0, o1 []T, k, m, n, i, j int) {
	var c00, c01, c02, c03 T
	var c10, c11, c12, c13 T
	for p := 0; p < k; p++ {
		ap := a[p*m+i : p*m+i+2]
		bp := b[p*n+j : p*n+j+4]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		if v := ap[0]; v != 0 {
			c00 += v * b0
			c01 += v * b1
			c02 += v * b2
			c03 += v * b3
		}
		if v := ap[1]; v != 0 {
			c10 += v * b0
			c11 += v * b1
			c12 += v * b2
			c13 += v * b3
		}
	}
	o0[j+0] = c00
	o0[j+1] = c01
	o0[j+2] = c02
	o0[j+3] = c03
	o1[j+0] = c10
	o1[j+1] = c11
	o1[j+2] = c12
	o1[j+3] = c13
}

// atbColTail handles the ≤3 trailing output columns [jlo,n) for the
// row pair i,i+1, one accumulator pair per column (ascending p, gated
// per a element).
func atbColTail[T number](a, b, o0, o1 []T, k, m, n, i, jlo int) {
	for j := jlo; j < n; j++ {
		var c0, c1 T
		for p := 0; p < k; p++ {
			ap := a[p*m+i : p*m+i+2]
			bv := b[p*n+j]
			if v := ap[0]; v != 0 {
				c0 += v * bv
			}
			if v := ap[1]; v != 0 {
				c1 += v * bv
			}
		}
		o0[j] = c0
		o1[j] = c1
	}
}

// --- MatMulABT: out[i,j] = Σ_p a[i,p]·b[j,p], a is m×k, b is n×k ---

// abtPanel computes out rows [lo,hi) of a@bᵀ. Dense dot products with
// direct assignment: out need not be zeroed.
func abtPanel[T number](a, b, out []T, k, n, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		o0 := out[(i+0)*n : (i+1)*n]
		o1 := out[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			abt2x4(a0, a1,
				b[(j+0)*k:(j+1)*k], b[(j+1)*k:(j+2)*k],
				b[(j+2)*k:(j+3)*k], b[(j+3)*k:(j+4)*k],
				o0, o1, j)
		}
		for ; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			var c0, c1 T
			for p := 0; p < len(bj); p++ {
				c0 += a0[p] * bj[p]
				c1 += a1[p] * bj[p]
			}
			o0[j] = c0
			o1[j] = c1
		}
	}
	if i < hi {
		ai := a[i*k : (i+1)*k]
		oi := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			var c T
			for p := 0; p < len(bj); p++ {
				c += ai[p] * bj[p]
			}
			oi[j] = c
		}
	}
}

// abt2x4 computes the dense 2×4 dot-product strip at columns j..j+3.
func abt2x4[T number](a0, a1, b0, b1, b2, b3, o0, o1 []T, j int) {
	var c00, c01, c02, c03 T
	var c10, c11, c12, c13 T
	for p := 0; p < len(a0); p++ {
		av0, av1 := a0[p], a1[p]
		bv0, bv1, bv2, bv3 := b0[p], b1[p], b2[p], b3[p]
		c00 += av0 * bv0
		c01 += av0 * bv1
		c02 += av0 * bv2
		c03 += av0 * bv3
		c10 += av1 * bv0
		c11 += av1 * bv1
		c12 += av1 * bv2
		c13 += av1 * bv3
	}
	o0[j+0] = c00
	o0[j+1] = c01
	o0[j+2] = c02
	o0[j+3] = c03
	o1[j+0] = c10
	o1[j+1] = c11
	o1[j+2] = c12
	o1[j+3] = c13
}

// --- Fused element-wise kernels ---

// addScaled computes dst[i] = a[i] + s·b[i], 4-way unrolled. dst may
// alias a and/or b (the in-place axpy of the aggregation path).
func addScaled[T number](dst, a []T, s T, b []T) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d := dst[i : i+4]
		av := a[i : i+4]
		bv := b[i : i+4]
		d[0] = av[0] + s*bv[0]
		d[1] = av[1] + s*bv[1]
		d[2] = av[2] + s*bv[2]
		d[3] = av[3] + s*bv[3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] + s*b[i]
	}
}
