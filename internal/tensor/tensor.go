// Package tensor implements dense float64 tensors and the small set of
// linear-algebra operations the reproduction needs: elementwise arithmetic,
// matrix multiplication, reductions, and channel-wise statistics over
// C×H×W feature maps (the shape style transfer operates on).
//
// Tensors are row-major. Operations that can fail on shape mismatch return
// errors rather than panicking, per the project's library-code conventions;
// hot-path helpers with Must- prefixes are provided for internal use where
// shapes are guaranteed by construction.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float64 tensor.
type Tensor struct {
	shape []int
	data  []float64
}

// New allocates a zero-filled tensor with the given shape.
// A scalar is represented by an empty shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			n = 0
			break
		}
		n *= s
	}
	cp := make([]int, len(shape))
	copy(cp, shape)
	return &Tensor{shape: cp, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The data is NOT
// copied; the caller must not alias it afterwards unless intended.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (=%d)", len(data), shape, n)
	}
	cp := make([]int, len(shape))
	copy(cp, shape)
	return &Tensor{shape: cp, data: data}, nil
}

// MustFromSlice is FromSlice that panics on shape mismatch. Use only with
// shapes guaranteed by construction.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Randn fills a new tensor with N(0, std) samples drawn from r.
func Randn(r *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = r.NormFloat64() * std
	}
	return t
}

// RandUniform fills a new tensor with Uniform(lo, hi) samples drawn from r.
func RandUniform(r *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + r.Float64()*(hi-lo)
	}
	return t
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the underlying storage. Mutations are visible to the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Dims returns the number of axes.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	cp := New(t.shape...)
	copy(cp.data, t.data)
	return cp
}

// Reshape returns a view of t with a new shape covering the same elements.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v (=%d elems) to %v (=%d elems)", t.shape, len(t.data), shape, n)
	}
	cp := make([]int, len(shape))
	copy(cp, shape)
	return &Tensor{shape: cp, data: t.data}, nil
}

// MustReshape is Reshape that panics on element-count mismatch.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	r, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return r
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// --- elementwise arithmetic ---

// AddInPlace computes t += o.
func (t *Tensor) AddInPlace(o *Tensor) error {
	if !SameShape(t, o) {
		return fmt.Errorf("tensor: add shape mismatch %v vs %v", t.shape, o.shape)
	}
	for i := range t.data {
		t.data[i] += o.data[i]
	}
	return nil
}

// SubInPlace computes t -= o.
func (t *Tensor) SubInPlace(o *Tensor) error {
	if !SameShape(t, o) {
		return fmt.Errorf("tensor: sub shape mismatch %v vs %v", t.shape, o.shape)
	}
	for i := range t.data {
		t.data[i] -= o.data[i]
	}
	return nil
}

// MulInPlace computes the Hadamard product t *= o.
func (t *Tensor) MulInPlace(o *Tensor) error {
	if !SameShape(t, o) {
		return fmt.Errorf("tensor: mul shape mismatch %v vs %v", t.shape, o.shape)
	}
	for i := range t.data {
		t.data[i] *= o.data[i]
	}
	return nil
}

// Scale multiplies every element by s, in place, and returns t.
func (t *Tensor) Scale(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScaled computes t += s*o, the classic axpy.
func (t *Tensor) AddScaled(s float64, o *Tensor) error {
	if !SameShape(t, o) {
		return fmt.Errorf("tensor: addscaled shape mismatch %v vs %v", t.shape, o.shape)
	}
	for i := range t.data {
		t.data[i] += s * o.data[i]
	}
	return nil
}

// Add returns a+b as a new tensor.
func Add(a, b *Tensor) (*Tensor, error) {
	if !SameShape(a, b) {
		return nil, fmt.Errorf("tensor: add shape mismatch %v vs %v", a.shape, b.shape)
	}
	out := a.Clone()
	_ = out.AddInPlace(b)
	return out, nil
}

// Sub returns a-b as a new tensor.
func Sub(a, b *Tensor) (*Tensor, error) {
	if !SameShape(a, b) {
		return nil, fmt.Errorf("tensor: sub shape mismatch %v vs %v", a.shape, b.shape)
	}
	out := a.Clone()
	_ = out.SubInPlace(b)
	return out, nil
}

// Apply replaces every element x with f(x), in place, and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i := range t.data {
		t.data[i] = f(t.data[i])
	}
	return t
}

// Zero resets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// --- reductions ---

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Dot returns the inner product of a and b viewed as flat vectors.
// Like the other binary ops, the operands must share a shape.
func Dot(a, b *Tensor) (float64, error) {
	if !SameShape(a, b) {
		return 0, fmt.Errorf("tensor: dot shape mismatch %v vs %v", a.shape, b.shape)
	}
	s := 0.0
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s, nil
}

// Norm returns the Euclidean norm of t viewed as a flat vector.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// SquaredDistance returns ||a-b||² of the flattened tensors.
// Like the other binary ops, the operands must share a shape.
func SquaredDistance(a, b *Tensor) (float64, error) {
	if !SameShape(a, b) {
		return 0, fmt.Errorf("tensor: distance shape mismatch %v vs %v", a.shape, b.shape)
	}
	s := 0.0
	for i := range a.data {
		d := a.data[i] - b.data[i]
		s += d * d
	}
	return s, nil
}

// CosineSimilarity returns the cosine of the angle between flat vectors a
// and b, or 0 when either has zero norm.
func CosineSimilarity(a, b *Tensor) (float64, error) {
	dot, err := Dot(a, b)
	if err != nil {
		return 0, err
	}
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0, nil
	}
	return dot / (na * nb), nil
}

// ArgMax returns the index of the maximum element of the flattened tensor,
// or -1 for an empty tensor. Ties resolve to the first maximum.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		return -1
	}
	best, bi := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// --- matrix operations (2-D tensors) ---
//
// The matrix products (MatMul, MatMulATB, MatMulABT and their Into/Serial
// variants) live in kernels.go: parallel cache-blocked kernels with a
// serial fallback, bit-identical to the naive reference at any
// parallelism.

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func (t *Tensor) Transpose2D() (*Tensor, error) {
	if t.Dims() != 2 {
		return nil, fmt.Errorf("tensor: transpose needs a 2-D tensor, got %v", t.shape)
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out, nil
}

// Row returns a view of row i of a 2-D tensor as a 1-D tensor.
func (t *Tensor) Row(i int) (*Tensor, error) {
	if t.Dims() != 2 {
		return nil, fmt.Errorf("tensor: Row needs a 2-D tensor, got %v", t.shape)
	}
	if i < 0 || i >= t.shape[0] {
		return nil, fmt.Errorf("tensor: row %d out of range for shape %v", i, t.shape)
	}
	n := t.shape[1]
	return &Tensor{shape: []int{n}, data: t.data[i*n : (i+1)*n]}, nil
}

// MustRow is Row that panics on error. Use only with indices guaranteed by
// construction.
func (t *Tensor) MustRow(i int) *Tensor {
	r, err := t.Row(i)
	if err != nil {
		panic(err)
	}
	return r
}

// --- channel-wise statistics over C×H×W maps ---

// ChannelStats returns the per-channel mean and standard deviation of a
// feature map shaped (C, H, W). eps stabilizes sigma for flat channels.
func ChannelStats(t *Tensor, eps float64) (mu, sigma []float64, err error) {
	if t.Dims() != 3 {
		return nil, nil, fmt.Errorf("tensor: ChannelStats needs a 3-D (C,H,W) tensor, got %v", t.shape)
	}
	c, h, w := t.shape[0], t.shape[1], t.shape[2]
	hw := h * w
	mu = make([]float64, c)
	sigma = make([]float64, c)
	for ch := 0; ch < c; ch++ {
		seg := t.data[ch*hw : (ch+1)*hw]
		m := 0.0
		for _, v := range seg {
			m += v
		}
		m /= float64(hw)
		va := 0.0
		for _, v := range seg {
			d := v - m
			va += d * d
		}
		va /= float64(hw)
		mu[ch] = m
		sigma[ch] = math.Sqrt(va + eps)
	}
	return mu, sigma, nil
}

// Softmax writes the softmax of each row of a 2-D tensor into a new tensor.
func Softmax(logits *Tensor) (*Tensor, error) {
	if logits.Dims() != 2 {
		return nil, fmt.Errorf("tensor: Softmax needs a 2-D tensor, got %v", logits.shape)
	}
	m, n := logits.shape[0], logits.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := logits.data[i*n : (i+1)*n]
		orow := out.data[i*n : (i+1)*n]
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		s := 0.0
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			s += e
		}
		inv := 1.0 / s
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out, nil
}

// Stack concatenates 1-D tensors of equal length into a 2-D (len(rows), n)
// tensor, copying the data.
func Stack(rows []*Tensor) (*Tensor, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("tensor: Stack of zero rows")
	}
	n := rows[0].Len()
	out := New(len(rows), n)
	for i, r := range rows {
		if r.Len() != n {
			return nil, fmt.Errorf("tensor: Stack row %d has length %d, want %d", i, r.Len(), n)
		}
		copy(out.data[i*n:(i+1)*n], r.data)
	}
	return out, nil
}

// String renders a compact description, useful in test failures.
func (t *Tensor) String() string {
	if len(t.data) <= 8 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%g %g ... %g]", t.shape, t.data[0], t.data[1], t.data[len(t.data)-1])
}
