package tensor_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pardon-feddg/pardon/internal/tensor"
)

func TestNewZeroFilled(t *testing.T) {
	x := tensor.New(2, 3)
	if x.Len() != 6 {
		t.Fatalf("len = %d, want 6", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
	if x.Dims() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("shape = %v", x.Shape())
	}
}

func TestFromSlice(t *testing.T) {
	x, err := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g, want 3", x.At(1, 0))
	}
	if _, err := tensor.FromSlice([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("want error for mismatched length")
	}
}

func TestSetAt(t *testing.T) {
	x := tensor.New(2, 2, 2)
	x.Set(5, 1, 0, 1)
	if x.At(1, 0, 1) != 5 {
		t.Fatalf("At = %g, want 5", x.At(1, 0, 1))
	}
	if x.At(0, 0, 0) != 0 {
		t.Fatal("unrelated element modified")
	}
}

func TestReshape(t *testing.T) {
	x := tensor.MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y, err := x.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(2, 1) != 6 {
		t.Fatalf("reshaped At(2,1) = %g, want 6", y.At(2, 1))
	}
	// View semantics: mutation is shared.
	y.Set(9, 0, 0)
	if x.At(0, 0) != 9 {
		t.Fatal("reshape should share storage")
	}
	if _, err := x.Reshape(4, 2); err == nil {
		t.Fatal("want error for bad reshape")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := tensor.MustFromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 7
	if x.Data()[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestElementwiseErrors(t *testing.T) {
	a := tensor.New(2, 2)
	b := tensor.New(4)
	if err := a.AddInPlace(b); err == nil {
		t.Fatal("AddInPlace should reject shape mismatch")
	}
	if err := a.SubInPlace(b); err == nil {
		t.Fatal("SubInPlace should reject shape mismatch")
	}
	if err := a.MulInPlace(b); err == nil {
		t.Fatal("MulInPlace should reject shape mismatch")
	}
	if err := a.AddScaled(2, b); err == nil {
		t.Fatal("AddScaled should reject shape mismatch")
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(vals [8]float64) bool {
		a := tensor.MustFromSlice(append([]float64(nil), vals[:]...), 2, 4)
		orig := a.Clone()
		b := tensor.Full(3.5, 2, 4)
		if err := a.AddInPlace(b); err != nil {
			return false
		}
		if err := a.SubInPlace(b); err != nil {
			return false
		}
		for i := range a.Data() {
			if math.Abs(a.Data()[i]-orig.Data()[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := tensor.MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := tensor.MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := tensor.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("matmul[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := tensor.New(2, 3)
	b := tensor.New(2, 3)
	if _, err := tensor.MatMul(a, b); err == nil {
		t.Fatal("want inner-dim error")
	}
	if _, err := tensor.MatMul(tensor.New(6), b); err == nil {
		t.Fatal("want rank error")
	}
}

// MatMulATB and MatMulABT must agree with explicit transposition.
func TestMatMulTransposedVariants(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := tensor.Randn(r, 1, 4, 3)
	b := tensor.Randn(r, 1, 4, 5)
	at, err := a.Transpose2D()
	if err != nil {
		t.Fatal(err)
	}
	want, err := tensor.MatMul(at, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tensor.MatMulATB(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(want.Data(), got.Data()) {
		t.Fatal("MatMulATB disagrees with explicit transpose")
	}

	c := tensor.Randn(r, 1, 3, 4)
	d := tensor.Randn(r, 1, 5, 4)
	dt, err := d.Transpose2D()
	if err != nil {
		t.Fatal(err)
	}
	want2, err := tensor.MatMul(c, dt)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := tensor.MatMulABT(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(want2.Data(), got2.Data()) {
		t.Fatal("MatMulABT disagrees with explicit transpose")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := tensor.Randn(r, 1, 3, 5)
	at, err := a.Transpose2D()
	if err != nil {
		t.Fatal(err)
	}
	att, err := at.Transpose2D()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a.Data(), att.Data()) {
		t.Fatal("double transpose is not identity")
	}
}

func TestChannelStats(t *testing.T) {
	// Channel 0 constant 2 → mean 2, sigma = sqrt(eps). Channel 1 is
	// {0,0,2,2} → mean 1, var 1.
	x := tensor.MustFromSlice([]float64{2, 2, 2, 2, 0, 0, 2, 2}, 2, 2, 2)
	mu, sigma, err := tensor.ChannelStats(x, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if mu[0] != 2 || mu[1] != 1 {
		t.Fatalf("mu = %v", mu)
	}
	if math.Abs(sigma[0]-math.Sqrt(1e-5)) > 1e-12 {
		t.Fatalf("sigma[0] = %g", sigma[0])
	}
	if math.Abs(sigma[1]-math.Sqrt(1+1e-5)) > 1e-12 {
		t.Fatalf("sigma[1] = %g", sigma[1])
	}
	if _, _, err := tensor.ChannelStats(tensor.New(4), 1e-5); err == nil {
		t.Fatal("want rank error")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := tensor.Randn(r, 10, 4, 6) // large values exercise stability
	p, err := tensor.Softmax(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s := 0.0
		for j := 0; j < 6; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("prob out of range: %g", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, s)
		}
	}
}

func TestArgMax(t *testing.T) {
	x := tensor.MustFromSlice([]float64{1, 5, 5, 2}, 4)
	if got := x.ArgMax(); got != 1 {
		t.Fatalf("argmax = %d, want 1 (first max)", got)
	}
	if got := tensor.New(0).ArgMax(); got != -1 {
		t.Fatalf("empty argmax = %d, want -1", got)
	}
}

func TestDotNormCosine(t *testing.T) {
	a := tensor.MustFromSlice([]float64{3, 4}, 2)
	b := tensor.MustFromSlice([]float64{4, -3}, 2)
	d, err := tensor.Dot(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("dot = %g, want 0", d)
	}
	if a.Norm() != 5 {
		t.Fatalf("norm = %g, want 5", a.Norm())
	}
	cs, err := tensor.CosineSimilarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cs != 0 {
		t.Fatalf("cosine = %g, want 0", cs)
	}
	zero := tensor.New(2)
	cs, err = tensor.CosineSimilarity(a, zero)
	if err != nil || cs != 0 {
		t.Fatalf("cosine with zero vector = %g, %v", cs, err)
	}
}

func TestSquaredDistance(t *testing.T) {
	a := tensor.MustFromSlice([]float64{1, 2}, 2)
	b := tensor.MustFromSlice([]float64{4, 6}, 2)
	d, err := tensor.SquaredDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 25 {
		t.Fatalf("squared distance = %g, want 25", d)
	}
}

func TestStack(t *testing.T) {
	rows := []*tensor.Tensor{
		tensor.MustFromSlice([]float64{1, 2}, 2),
		tensor.MustFromSlice([]float64{3, 4}, 2),
	}
	s, err := tensor.Stack(rows)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim(0) != 2 || s.Dim(1) != 2 || s.At(1, 1) != 4 {
		t.Fatalf("stack = %v", s)
	}
	if _, err := tensor.Stack(nil); err == nil {
		t.Fatal("want error for empty stack")
	}
	rows = append(rows, tensor.New(3))
	if _, err := tensor.Stack(rows); err == nil {
		t.Fatal("want error for ragged rows")
	}
}

func TestRowView(t *testing.T) {
	x := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	row := x.MustRow(1)
	if row.Data()[0] != 3 {
		t.Fatalf("row = %v", row.Data())
	}
	row.Data()[0] = 9
	if x.At(1, 0) != 9 {
		t.Fatal("Row should be a view")
	}
	if _, err := x.Row(5); err == nil {
		t.Fatal("want range error")
	}
}

func TestScaleApplySum(t *testing.T) {
	x := tensor.MustFromSlice([]float64{1, -2, 3}, 3)
	x.Scale(2)
	if x.Sum() != 4 {
		t.Fatalf("sum = %g, want 4", x.Sum())
	}
	x.Apply(math.Abs)
	if x.Sum() != 12 {
		t.Fatalf("sum after abs = %g, want 12", x.Sum())
	}
	if got := x.Mean(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("mean = %g, want 4", got)
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestRandDeterministic(t *testing.T) {
	a := tensor.Randn(rand.New(rand.NewSource(1)), 1, 5)
	b := tensor.Randn(rand.New(rand.NewSource(1)), 1, 5)
	if !almostEqual(a.Data(), b.Data()) {
		t.Fatal("same seed should give same tensor")
	}
	u := tensor.RandUniform(rand.New(rand.NewSource(2)), -1, 1, 100)
	for _, v := range u.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("uniform out of range: %g", v)
		}
	}
}

func almostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}
