// Package testref preserves reference implementations of pre-refactor
// code paths as shared ground truth for equivalence tests and
// benchmarks. It is imported only from _test files; production code
// must not depend on it.
package testref

import (
	"fmt"

	"github.com/pardon-feddg/pardon/internal/nn"
)

// LegacyWeightedAverage is the historical per-tensor FedAvg: clone the
// first model, zero every tensor, then accumulate each model's tensors
// with AddScaled in canonical order. The fused arena path
// (nn.WeightedAverageInto) is proven bit-identical to this.
func LegacyWeightedAverage(models []*nn.Model, weights []float64) (*nn.Model, error) {
	if len(models) == 0 || len(weights) != len(models) {
		return nil, fmt.Errorf("testref: %d weights for %d models", len(weights), len(models))
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	out := models[0].Clone()
	for _, p := range out.Params() {
		p.Zero()
	}
	for i, m := range models {
		w := weights[i] / total
		op := out.Params()
		for pi, p := range m.Params() {
			if err := op[pi].AddScaled(w, p); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
