package pardon

// This file is the public facade of the library: external modules cannot
// import internal/ packages, so the types and constructors a downstream
// user needs are re-exported here under stable names. Examples of use are
// in examples/ (quickstart first) and every experiment in internal/eval
// is built from exactly this surface.

import (
	"math/rand"

	"github.com/pardon-feddg/pardon/internal/attack"
	"github.com/pardon-feddg/pardon/internal/baselines"
	"github.com/pardon-feddg/pardon/internal/core"
	"github.com/pardon-feddg/pardon/internal/dataset"
	"github.com/pardon-feddg/pardon/internal/encoder"
	"github.com/pardon-feddg/pardon/internal/fl"
	"github.com/pardon-feddg/pardon/internal/nn"
	"github.com/pardon-feddg/pardon/internal/partition"
	"github.com/pardon-feddg/pardon/internal/rng"
	"github.com/pardon-feddg/pardon/internal/style"
	"github.com/pardon-feddg/pardon/internal/synth"
)

// --- federated engine ---

// Env is the shared execution environment of a federated run: frozen
// encoder, model architecture, hyper-parameters, deterministic randomness.
type Env = fl.Env

// Client is one federated participant with cached encoder features.
type Client = fl.Client

// EvalSet is a pre-encoded evaluation corpus (e.g. an unseen domain).
type EvalSet = fl.EvalSet

// Algorithm is a federated training method; PARDON and all baselines
// implement it.
type Algorithm = fl.Algorithm

// RunConfig controls rounds, per-round client sampling, and evaluation
// cadence.
type RunConfig = fl.RunConfig

// History is the trace of a federated run (per-round accuracy, timing).
type History = fl.History

// Hyper bundles local-training hyper-parameters.
type Hyper = fl.Hyper

// DefaultHyper mirrors the paper's local-training settings.
func DefaultHyper() Hyper { return fl.DefaultHyper() }

// NewClients encodes partitioned datasets into federated clients.
func NewClients(env *Env, parts []*Dataset) ([]*Client, error) { return fl.NewClients(env, parts) }

// NewEvalSet encodes an evaluation dataset once.
func NewEvalSet(env *Env, data *Dataset) (*EvalSet, error) { return fl.NewEvalSet(env, data) }

// Run executes a federated training run.
func Run(env *Env, alg Algorithm, clients []*Client, val, test *EvalSet, cfg RunConfig) (*Model, *History, error) {
	return fl.Run(env, alg, clients, val, test, cfg)
}

// --- the PARDON method and its baselines ---

// Options configures PARDON (and its Table V ablation variants).
type Options = core.Options

// DefaultOptions returns the full PARDON configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewPARDON constructs the PARDON algorithm.
func NewPARDON(opts Options) *core.PARDON { return core.New(opts) }

// Baseline constructors, matching the paper's comparison set.
var (
	NewFedAvg  = func() Algorithm { return &baselines.FedAvg{} }
	NewFedSR   = func() Algorithm { return baselines.NewFedSR() }
	NewFedGMA  = func() Algorithm { return baselines.NewFedGMA() }
	NewFPL     = func() Algorithm { return baselines.NewFPL() }
	NewFedDGGA = func() Algorithm { return baselines.NewFedDGGA() }
	NewCCST    = func() Algorithm { return baselines.NewCCST() }
)

// --- data ---

// Dataset is an ordered, domain-tagged sample collection.
type Dataset = dataset.Dataset

// Sample is one labeled, domain-tagged example.
type Sample = dataset.Sample

// Split names the train/val/test domains of an evaluation scheme.
type Split = dataset.Split

// LODOSplits and LTDOSplits enumerate the paper's evaluation schemes.
func LODOSplits(numDomains int, names []string) ([]Split, error) {
	return dataset.LODOSplits(numDomains, names)
}

// LTDOSplits enumerates leave-two-domains-out schemes.
func LTDOSplits(numDomains int, names []string) ([]Split, error) {
	return dataset.LTDOSplits(numDomains, names)
}

// PartitionOptions configures domain-based client heterogeneity.
type PartitionOptions = partition.Options

// PartitionByDomain splits per-domain datasets across clients with
// heterogeneity level λ.
func PartitionByDomain(domainData []*Dataset, opts PartitionOptions, r *rand.Rand) ([]*Dataset, error) {
	return partition.PartitionByDomain(domainData, opts, r)
}

// --- synthetic corpora ---

// Generator renders samples of a synthetic multi-domain corpus.
type Generator = synth.Generator

// GeneratorConfig describes a synthetic corpus.
type GeneratorConfig = synth.Config

// NewGenerator constructs a corpus generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) { return synth.New(cfg) }

// Preset corpus configurations mirroring the paper's datasets.
var (
	PACSConfig       = synth.PACSConfig
	OfficeHomeConfig = synth.OfficeHomeConfig
	IWildCamConfig   = synth.IWildCamConfig
)

// --- encoder, model, styles ---

// Encoder is the frozen pre-trained feature encoder Φ.
type Encoder = encoder.Encoder

// EncoderConfig describes the encoder architecture.
type EncoderConfig = encoder.Config

// NewEncoder builds the frozen encoder.
func NewEncoder(cfg EncoderConfig) (*Encoder, error) { return encoder.New(cfg) }

// DefaultEncoderConfig is the encoder used throughout the experiments.
func DefaultEncoderConfig() EncoderConfig { return encoder.DefaultConfig() }

// Model is the trainable feature extractor + classifier.
type Model = nn.Model

// ModelConfig describes the model architecture.
type ModelConfig = nn.Config

// Style is the channel-wise (μ, σ) statistics of a feature map.
type Style = style.Style

// AdaIN re-normalizes a feature map to a target style (Eq. 6).
var AdaIN = style.AdaIN

// --- randomness ---

// RNG is the deterministic splittable randomness source; every Env needs
// one.
type RNG = rng.Source

// NewRNG returns a source rooted at the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// --- privacy audit ---

// PrivacyConfig sizes the style-inversion attack experiment.
type PrivacyConfig = attack.PrivacyConfig

// RunPrivacyAudit executes the Table IV attacks.
func RunPrivacyAudit(cfg PrivacyConfig) (*attack.PrivacyResult, error) {
	return attack.RunPrivacy(cfg)
}
