package pardon_test

import (
	"testing"

	pardon "github.com/pardon-feddg/pardon"
)

// TestPublicAPIEndToEnd drives the whole library through the public
// facade only — the path an external adopter takes.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end API test is not short")
	}
	gen, err := pardon.NewGenerator(pardon.PACSConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := pardon.NewEncoder(pardon.DefaultEncoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, h, w := enc.OutShape()
	env := &pardon.Env{
		Enc:      enc,
		ModelCfg: pardon.ModelConfig{In: c * h * w, Hidden: 32, ZDim: 16, Classes: 7},
		Hyper:    pardon.DefaultHyper(),
		RNG:      pardon.NewRNG(5),
	}

	var train []*pardon.Dataset
	for _, d := range []int{0, 1} {
		ds, err := gen.GenerateDomain(d, 120, "api")
		if err != nil {
			t.Fatal(err)
		}
		train = append(train, ds)
	}
	if err := env.Calibrate(32, train...); err != nil {
		t.Fatal(err)
	}
	testDS, err := gen.GenerateDomain(3, 100, "api-test")
	if err != nil {
		t.Fatal(err)
	}

	parts, err := pardon.PartitionByDomain(train, pardon.PartitionOptions{NumClients: 8, Lambda: 0.1}, env.RNG.Stream("partition"))
	if err != nil {
		t.Fatal(err)
	}
	clients, err := pardon.NewClients(env, parts)
	if err != nil {
		t.Fatal(err)
	}
	test, err := pardon.NewEvalSet(env, testDS)
	if err != nil {
		t.Fatal(err)
	}

	for _, alg := range []pardon.Algorithm{
		pardon.NewFedAvg(),
		pardon.NewPARDON(pardon.DefaultOptions()),
	} {
		model, hist, err := pardon.Run(env, alg, clients, nil, test, pardon.RunConfig{Rounds: 4, SampleK: 4})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if model == nil || hist.Final().TestAcc <= 0 {
			t.Fatalf("%s produced no usable result", alg.Name())
		}
	}

	// Style transfer through the facade.
	f, err := enc.Encode(testDS.Samples[0].X)
	if err != nil {
		t.Fatal(err)
	}
	target := &pardon.Style{Mu: make([]float64, 16), Sigma: make([]float64, 16)}
	for i := range target.Sigma {
		target.Sigma[i] = 1
	}
	if _, err := pardon.AdaIN(f, target); err != nil {
		t.Fatal(err)
	}

	// Splits through the facade.
	splits, err := pardon.LTDOSplits(4, []string{"P", "A", "C", "S"})
	if err != nil || len(splits) != 4 {
		t.Fatalf("LTDO: %v %d", err, len(splits))
	}
	if _, err := pardon.LODOSplits(4, nil); err != nil {
		t.Fatal(err)
	}
}
