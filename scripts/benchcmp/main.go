// Command benchcmp compares two `go test -bench` outputs and reports
// per-benchmark ns/op deltas, so CI can hold the kernel benchmarks to a
// regression budget across commits.
//
// Both inputs may be plain benchmark text or the test2json stream that
// `go test -json -bench` emits (the format of the CI BENCH_<sha>.json
// artifacts); the format is auto-detected per line. Benchmarks are
// matched by name with the trailing -GOMAXPROCS suffix stripped; a name
// present in only one input is reported and otherwise ignored (new
// benchmarks must not fail the gate retroactively).
//
//	benchcmp -old BENCH_prev.txt -new BENCH_head.txt \
//	    -filter 'MicroKernels|MatMul256' -max-regress 10 [-warn-only]
//
// The exit status is 1 when the geometric mean of the matched
// new/old ns-per-op ratios regresses by more than -max-regress percent,
// unless -warn-only downgrades that to a ::warning:: annotation
// (GitHub-flavored; harmless noise elsewhere). Individual benchmarks
// over the budget always get a ::warning:: line, because single-bench
// swings on shared CI runners are usually scheduler noise — the geomean
// is the signal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line, e.g.
// "BenchmarkMicroKernels/MatMul/f64/256-4   50   23456 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parse reads a benchmark output file and returns name → ns/op. Lines
// that are JSON objects are treated as test2json events and their
// Output payload is scanned instead. Repeated names keep the minimum —
// the least-interrupted run is the best estimate of the true cost.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct {
				Output string `json:"Output"`
			}
			if json.Unmarshal([]byte(line), &ev) != nil {
				continue
			}
			line = strings.TrimSuffix(ev.Output, "\n")
		}
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil || ns <= 0 {
			continue
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

func main() {
	oldPath := flag.String("old", "", "baseline benchmark output (text or test2json)")
	newPath := flag.String("new", "", "candidate benchmark output (text or test2json)")
	filter := flag.String("filter", "", "regexp selecting benchmark names to compare (default: all)")
	maxRegress := flag.Float64("max-regress", 10, "geomean regression budget in percent")
	warnOnly := flag.Bool("warn-only", false, "annotate instead of failing when the budget is exceeded")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -old and -new are required")
		os.Exit(2)
	}
	var keep *regexp.Regexp
	if *filter != "" {
		var err error
		if keep, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: bad -filter: %v\n", err)
			os.Exit(2)
		}
	}
	oldNs, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	newNs, err := parse(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newNs))
	for name := range newNs {
		if keep == nil || keep.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	logSum, matched := 0.0, 0
	fmt.Printf("%-55s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		nv := newNs[name]
		ov, ok := oldNs[name]
		if !ok {
			fmt.Printf("%-55s %12s %12.0f %8s\n", name, "—", nv, "new")
			continue
		}
		ratio := nv / ov
		pct := (ratio - 1) * 100
		fmt.Printf("%-55s %12.0f %12.0f %+7.1f%%\n", name, ov, nv, pct)
		if pct > *maxRegress {
			fmt.Printf("::warning::%s regressed %.1f%% (%.0f → %.0f ns/op)\n", name, pct, ov, nv)
		}
		logSum += math.Log(ratio)
		matched++
	}
	if matched == 0 {
		fmt.Println("benchcmp: no overlapping benchmarks; nothing to compare")
		return
	}
	geo := (math.Exp(logSum/float64(matched)) - 1) * 100
	fmt.Printf("\ngeomean delta over %d benchmarks: %+.1f%% (budget %.0f%%)\n", matched, geo, *maxRegress)
	if geo > *maxRegress {
		msg := fmt.Sprintf("kernel benchmarks regressed %.1f%% geomean, over the %.0f%% budget", geo, *maxRegress)
		if *warnOnly {
			fmt.Printf("::warning::%s\n", msg)
			return
		}
		fmt.Printf("::error::%s\n", msg)
		os.Exit(1)
	}
}
